"""Tests for the observability layer (repro.obs): clocks, tracer,
metrics, convergence records, and trace summarization."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    DISABLED,
    ConvergenceRecord,
    FakeClock,
    MetricsRegistry,
    NullTracer,
    Observability,
    SystemClock,
    TraceError,
    Tracer,
    emit_generation,
    load_trace,
    population_delta,
    summarize_trace,
    trace_summary_for_path,
)
from repro.obs.clock import Clock
from repro.obs.tracer import NULL_SPAN


class TestClocks:
    def test_system_clock_satisfies_protocol(self):
        clock = SystemClock()
        assert isinstance(clock, Clock)
        assert clock.perf() <= clock.perf()

    def test_fake_clock_manual_advance(self):
        clock = FakeClock(t=10.0)
        assert clock.now() == 10.0
        clock.advance(2.5)
        assert clock.perf() == 12.5
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_fake_clock_auto_tick(self):
        clock = FakeClock(tick=1.0)
        assert [clock.perf() for _ in range(3)] == [0.0, 1.0, 2.0]


class TestTracer:
    def test_span_nesting_records_parenthood(self):
        tracer = Tracer(clock=FakeClock(tick=1.0))
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                tracer.event("ping", n=1)
        records = tracer.records()
        names = [r["name"] for r in records]
        # inner closes before outer; the event lands between the opens
        assert names == ["ping", "inner", "outer"]
        event, inner, outer_rec = records
        assert outer_rec["parent"] is None
        assert inner["parent"] == outer_rec["id"]
        assert event["span"] == inner["parent"] + 1 or event["span"] == inner["id"]
        assert outer.span_id == outer_rec["id"]

    def test_span_durations_from_fake_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("phase"):
            clock.advance(3.0)
        (record,) = tracer.records()
        assert record["duration"] == 3.0
        assert (record["start"], record["end"]) == (0.0, 3.0)

    def test_span_set_attrs_and_error_capture(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(KeyError):
            with tracer.span("phase", stage=1) as span:
                span.set(configs=7)
                raise KeyError("boom")
        (record,) = tracer.records()
        assert record["attrs"] == {"stage": 1, "configs": 7, "error": "KeyError"}

    def test_event_without_open_span_is_rootless(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("lonely")
        (record,) = tracer.records()
        assert record["span"] is None

    def test_attrs_coerced_to_jsonable(self):
        import numpy as np

        tracer = Tracer(clock=FakeClock())
        tracer.event(
            "e",
            np_int=np.int64(3),
            np_float=np.float64(0.5),
            seq=(1, 2),
            mapping={"k": np.int32(1)},
            other=object(),
        )
        (record,) = tracer.records()
        attrs = record["attrs"]
        assert attrs["np_int"] == 3 and isinstance(attrs["np_int"], int)
        assert attrs["np_float"] == 0.5
        assert attrs["seq"] == [1, 2]
        assert attrs["mapping"] == {"k": 1}
        assert isinstance(attrs["other"], str)
        json.dumps(record)  # the whole record must serialize

    def test_write_jsonl_roundtrip_deterministic(self, tmp_path):
        def trace_once():
            tracer = Tracer(clock=FakeClock(tick=0.5))
            with tracer.span("run", kernel="mm"):
                tracer.event("gen", generation=0)
            return tracer

        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        n1 = trace_once().write_jsonl(p1, meta={"command": "test"})
        n2 = trace_once().write_jsonl(p2, meta={"command": "test"})
        assert n1 == n2 == 2
        assert p1.read_bytes() == p2.read_bytes()  # byte-determinism
        records = load_trace(p1)
        assert records[0] == {"type": "meta", "format": 1, "command": "test"}
        assert [r["type"] for r in records[1:]] == ["event", "span"]

    def test_write_jsonl_unwritable_raises_trace_error(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(TraceError, match="cannot write"):
            tracer.write_jsonl(tmp_path / "no" / "such" / "dir" / "t.jsonl")

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        assert not tracer.enabled
        span = tracer.span("anything", x=1)
        assert span is NULL_SPAN  # shared instance, no allocation per call
        with span as s:
            s.set(y=2)
        tracer.event("ignored")
        assert tracer.records() == []


class TestMetrics:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "help text")
        c.inc()
        c.inc(2)
        assert c.value == 3
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_up_down(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4

    def test_histogram_buckets(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            h.observe(v)
        assert h.count == 3 and h.sum == pytest.approx(2.55)
        text = "\n".join(h.expose())
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(1.0, 0.5))

    def test_get_or_create_and_kind_mismatch(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert "x" in reg and len(reg) == 1
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("b_total", "things").inc(2)
        reg.gauge("a_now").set(1.5)
        text = reg.exposition()
        # sorted by name, HELP only when given, TYPE always
        assert text.splitlines() == [
            "# TYPE a_now gauge",
            "a_now 1.5",
            "# HELP b_total things",
            "# TYPE b_total counter",
            "b_total 2",
        ]
        assert reg.as_dict() == {"a_now": 1.5, "b_total": 2.0}

    def test_empty_exposition(self):
        assert MetricsRegistry().exposition() == ""


class TestObservability:
    def test_disabled_default(self):
        obs = Observability.disabled()
        assert not obs.enabled
        assert isinstance(obs.tracer, NullTracer)
        assert not DISABLED.enabled

    def test_tracing_factory(self):
        clock = FakeClock()
        obs = Observability.tracing(clock=clock)
        assert obs.enabled
        assert obs.tracer.clock is clock


class TestConvergence:
    def test_record_roundtrip(self):
        rec = ConvergenceRecord(
            generation=3, evaluations=120, front_size=7, hypervolume=0.5,
            accepted=4, dominated=2,
        )
        assert ConvergenceRecord.from_dict(rec.as_dict()) == rec
        assert ConvergenceRecord.from_dict(
            {"generation": 0, "evaluations": 30, "front_size": 1, "hypervolume": 0.0}
        ).accepted == 0

    def test_emit_generation_writes_event_and_metrics(self):
        obs = Observability.tracing(clock=FakeClock())
        rec = ConvergenceRecord(
            generation=1, evaluations=60, front_size=5, hypervolume=0.25
        )
        emit_generation(obs, "rsgde3", rec)
        (event,) = obs.tracer.records()
        assert event["name"] == "optimizer.generation"
        assert event["attrs"]["algorithm"] == "rsgde3"
        assert event["attrs"]["hypervolume"] == 0.25
        snap = obs.metrics.as_dict()
        assert snap["repro_optimizer_generations_total"] == 1
        assert snap["repro_optimizer_front_size"] == 5
        assert snap["repro_optimizer_evaluations"] == 60

    def test_population_delta(self):
        class Cfg:
            def __init__(self, values):
                self.values = values

        before = [Cfg(("a",)), Cfg(("b",))]
        after = [Cfg(("b",)), Cfg(("c",)), Cfg(("d",))]
        assert population_delta(before, after) == (2, 1)
        assert population_delta(before, before) == (0, 0)


class TestTraceSummary:
    def _trace_file(self, tmp_path):
        tracer = Tracer(clock=FakeClock(tick=0.25))
        with tracer.span("driver.optimize", kernel="mm"):
            with tracer.span("engine.batch") as batch:
                batch.set(
                    configs=10, dispatched=8, cache_hits=2, deduped=0,
                    new_evaluations=8, retried=0, timeouts=0, failed=0,
                )
            tracer.event(
                "optimizer.generation",
                algorithm="rsgde3", generation=0, evaluations=10,
                front_size=3, hypervolume=9.5e-05, accepted=10, dominated=0,
            )
        tracer.event(
            "runtime.selection",
            region="mm", policy="fastest", context={}, version=0,
            threads=8, predicted_time=0.01, actual_time=None,
        )
        path = tmp_path / "t.jsonl"
        tracer.write_jsonl(path, meta={"kernel": "mm", "command": "tune"})
        return path

    def test_summary_sections(self, tmp_path):
        text = trace_summary_for_path(self._trace_file(tmp_path))
        assert "trace: 2 spans, 2 events" in text
        assert "kernel=mm" in text and "command=tune" in text
        assert "Phase breakdown" in text and "driver.optimize" in text
        assert "Convergence trajectory" in text and "9.5e-05" in text
        assert "Evaluation-engine accounting" in text
        assert "Runtime selection decisions" in text and "fastest" in text

    def test_phase_breakdown_only_counts_roots(self, tmp_path):
        records = load_trace(self._trace_file(tmp_path))
        text = summarize_trace(records)
        # engine.batch is nested under driver.optimize, so the only phase
        # line is the root span at 100%
        phase_block = text.split("Phase breakdown")[1].split("Convergence")[0]
        assert "driver.optimize" in phase_block
        assert "engine.batch" not in phase_block
        assert "100.0%" in phase_block

    def test_missing_file_raises_trace_error(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            load_trace(tmp_path / "absent.jsonl")

    def test_corrupt_line_raises_with_lineno(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"type": "meta", "format": 1}\nnot json at all\n')
        with pytest.raises(TraceError, match="line 2"):
            load_trace(p)

    def test_non_record_object_rejected(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"no_type": true}\n')
        with pytest.raises(TraceError, match="'type' field"):
            load_trace(p)
        p.write_text("[1, 2, 3]\n")
        with pytest.raises(TraceError, match="line 1"):
            load_trace(p)

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("\n\n")
        with pytest.raises(TraceError, match="empty"):
            load_trace(p)


# ----------------------------------------------------------------------
# integration: the instrumented pipeline


from repro.driver.compiler import TuningDriver  # noqa: E402
from repro.experiments import make_setup  # noqa: E402
from repro.machine.model import WESTMERE  # noqa: E402
from repro.optimizer import RSGDE3  # noqa: E402
from repro.optimizer.gde3 import GDE3Settings  # noqa: E402
from repro.optimizer.random_search import random_search  # noqa: E402
from repro.optimizer.rsgde3 import RSGDE3Settings  # noqa: E402

_SMALL = RSGDE3Settings(gde3=GDE3Settings(population_size=12), max_generations=6)


class TestOptimizerTelemetry:
    def _run(self, workers=1, obs=None):
        problem = make_setup("mm", WESTMERE).problem(
            seed=11, workers=workers, obs=obs
        )
        return RSGDE3(problem, _SMALL).run(seed=4), problem

    def test_rsgde3_convergence_records(self):
        result, _ = self._run()
        records = result.convergence
        assert len(records) == result.generations + 1  # generation 0 included
        assert records[0].generation == 0
        assert records[0].accepted == _SMALL.gde3.population_size
        assert [r.generation for r in records] == list(range(len(records)))
        evals = [r.evaluations for r in records]
        assert evals == sorted(evals)
        assert records[-1].evaluations == result.evaluations
        assert all(r.front_size >= 1 for r in records)
        assert all(r.hypervolume > 0 for r in records)
        # hv_history stays in lockstep with the richer records
        assert [(r.evaluations, r.hypervolume) for r in records] == list(
            result.hv_history
        )

    def test_trajectory_bit_identical_across_workers(self):
        """Acceptance: the convergence telemetry, not just the front, must
        be bit-identical for any evaluation-engine worker count."""
        r1, _ = self._run(workers=1)
        r8, _ = self._run(workers=8)
        assert r1.convergence == r8.convergence

    def test_random_search_emits_batch_records(self):
        problem = make_setup("mm", WESTMERE).problem(seed=11)
        result = random_search(problem, budget=60, seed=1)
        assert result.convergence
        assert result.convergence[-1].evaluations == result.evaluations
        sizes = [r.front_size for r in result.convergence]
        assert all(s >= 1 for s in sizes)

    def test_generation_events_flow_into_trace(self):
        obs = Observability.tracing(clock=FakeClock(tick=1e-4))
        result, _ = self._run(obs=obs)
        events = [
            r for r in obs.tracer.records()
            if r["type"] == "event" and r["name"] == "optimizer.generation"
        ]
        assert len(events) == len(result.convergence)
        assert [e["attrs"]["generation"] for e in events] == [
            r.generation for r in result.convergence
        ]
        # events are parented to the optimizer.run span
        runs = [
            r for r in obs.tracer.records()
            if r["type"] == "span" and r["name"] == "optimizer.run"
        ]
        assert len(runs) == 1
        assert {e["span"] for e in events} == {runs[0]["id"]}
        assert runs[0]["attrs"]["algorithm"] == "rsgde3"
        assert obs.metrics.as_dict()[
            "repro_optimizer_generations_total"
        ] == len(events)


class TestEndToEndTrace:
    def test_traced_tune_covers_all_layers(self):
        obs = Observability.tracing(clock=FakeClock(tick=1e-4))
        driver = TuningDriver(
            machine=WESTMERE, seed=0, settings=_SMALL, obs=obs
        )
        tuned = driver.tune_kernel("mm", sizes={"N": 200})
        chosen = tuned.preview_selections()
        records = obs.tracer.records()
        span_names = {r["name"] for r in records if r["type"] == "span"}
        event_names = {r["name"] for r in records if r["type"] == "event"}
        assert {
            "driver.analyze", "driver.optimize", "driver.finalize",
            "optimizer.run", "engine.batch", "runtime.preview",
        } <= span_names
        assert {"optimizer.generation", "runtime.selection"} <= event_names

        # engine spans account for every configuration the optimizer asked for
        batches = [
            r for r in records
            if r["type"] == "span" and r["name"] == "engine.batch"
        ]
        stats = tuned.engine_stats
        assert sum(b["attrs"]["configs"] for b in batches) == stats.configs
        assert stats.configs == stats.dispatched + stats.cache_hits + stats.deduped

        # the runtime half: one decision per core policy, fastest picks the
        # lowest-time version (index 0 after the fastest-first sort)
        selections = [
            r for r in records
            if r["type"] == "event" and r["name"] == "runtime.selection"
        ]
        assert len(selections) == 3
        assert set(chosen) == {"fastest", "efficient", "balanced"}
        assert chosen["fastest"] == 0
        for e in selections:
            assert e["attrs"]["predicted_time"] > 0
            assert e["attrs"]["actual_time"] is None  # previewed, not executed

        metrics = obs.metrics.as_dict()
        assert metrics["repro_engine_batches_total"] == stats.batches
        assert metrics["repro_runtime_selections_total"] == 3
