#include <math.h>
#ifdef _OPENMP
#include <omp.h>
#endif

#define REPRO_MIN(a, b) ((a) < (b) ? (a) : (b))
#define REPRO_MAX(a, b) ((a) > (b) ? (a) : (b))

static inline double repro_rsqrt3(double x) { return 1.0 / (x * sqrt(x)); }
static inline double repro_rsqrt(double x) { return 1.0 / sqrt(x); }

void cov_update_v0(int N, int M, double X[N][M], double S[M][M]) {
    #pragma omp parallel for num_threads(30) schedule(static)
    for (long long cidx = 0; cidx < (M - 0 + 88 - 1) / 88 * ((M - 0 + 267 - 1) / 267); cidx += 1) {
        for (long long s_t = 0; s_t < N; s_t += 21) {
            for (long long a = 0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 88 - 1) / 88) * 88; a < REPRO_MIN(0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 88 - 1) / 88) * 88 + 88, M); a += 1) {
                for (long long b = 0 + cidx % ((M - 0 + 267 - 1) / 267) * 267; b < REPRO_MIN(0 + cidx % ((M - 0 + 267 - 1) / 267) * 267 + 267, M); b += 1) {
                    for (long long s = s_t; s < REPRO_MIN(s_t + 21, N); s += 1) {
                        S[a][b] = S[a][b] + X[s][a] * X[s][b];
                    }
                }
            }
        }
    }
}

void cov_update_v1(int N, int M, double X[N][M], double S[M][M]) {
    #pragma omp parallel for num_threads(28) schedule(static)
    for (long long cidx = 0; cidx < (M - 0 + 98 - 1) / 98 * ((M - 0 + 267 - 1) / 267); cidx += 1) {
        for (long long s_t = 0; s_t < N; s_t += 40) {
            for (long long a = 0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 98 - 1) / 98) * 98; a < REPRO_MIN(0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 98 - 1) / 98) * 98 + 98, M); a += 1) {
                for (long long b = 0 + cidx % ((M - 0 + 267 - 1) / 267) * 267; b < REPRO_MIN(0 + cidx % ((M - 0 + 267 - 1) / 267) * 267 + 267, M); b += 1) {
                    for (long long s = s_t; s < REPRO_MIN(s_t + 40, N); s += 1) {
                        S[a][b] = S[a][b] + X[s][a] * X[s][b];
                    }
                }
            }
        }
    }
}

void cov_update_v2(int N, int M, double X[N][M], double S[M][M]) {
    #pragma omp parallel for num_threads(24) schedule(static)
    for (long long cidx = 0; cidx < (M - 0 + 54 - 1) / 54 * ((M - 0 + 267 - 1) / 267); cidx += 1) {
        for (long long s_t = 0; s_t < N; s_t += 28) {
            for (long long a = 0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 54 - 1) / 54) * 54; a < REPRO_MIN(0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 54 - 1) / 54) * 54 + 54, M); a += 1) {
                for (long long b = 0 + cidx % ((M - 0 + 267 - 1) / 267) * 267; b < REPRO_MIN(0 + cidx % ((M - 0 + 267 - 1) / 267) * 267 + 267, M); b += 1) {
                    for (long long s = s_t; s < REPRO_MIN(s_t + 28, N); s += 1) {
                        S[a][b] = S[a][b] + X[s][a] * X[s][b];
                    }
                }
            }
        }
    }
}

void cov_update_v3(int N, int M, double X[N][M], double S[M][M]) {
    #pragma omp parallel for num_threads(20) schedule(static)
    for (long long cidx = 0; cidx < (M - 0 + 10 - 1) / 10 * ((M - 0 + 306 - 1) / 306); cidx += 1) {
        for (long long s_t = 0; s_t < N; s_t += 54) {
            for (long long a = 0 + cidx / ((M - 0 + 306 - 1) / 306) % ((M - 0 + 10 - 1) / 10) * 10; a < REPRO_MIN(0 + cidx / ((M - 0 + 306 - 1) / 306) % ((M - 0 + 10 - 1) / 10) * 10 + 10, M); a += 1) {
                for (long long b = 0 + cidx % ((M - 0 + 306 - 1) / 306) * 306; b < REPRO_MIN(0 + cidx % ((M - 0 + 306 - 1) / 306) * 306 + 306, M); b += 1) {
                    for (long long s = s_t; s < REPRO_MIN(s_t + 54, N); s += 1) {
                        S[a][b] = S[a][b] + X[s][a] * X[s][b];
                    }
                }
            }
        }
    }
}

void cov_update_v4(int N, int M, double X[N][M], double S[M][M]) {
    #pragma omp parallel for num_threads(18) schedule(static)
    for (long long cidx = 0; cidx < (M - 0 + 69 - 1) / 69 * ((M - 0 + 267 - 1) / 267); cidx += 1) {
        for (long long s_t = 0; s_t < N; s_t += 21) {
            for (long long a = 0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 69 - 1) / 69) * 69; a < REPRO_MIN(0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 69 - 1) / 69) * 69 + 69, M); a += 1) {
                for (long long b = 0 + cidx % ((M - 0 + 267 - 1) / 267) * 267; b < REPRO_MIN(0 + cidx % ((M - 0 + 267 - 1) / 267) * 267 + 267, M); b += 1) {
                    for (long long s = s_t; s < REPRO_MIN(s_t + 21, N); s += 1) {
                        S[a][b] = S[a][b] + X[s][a] * X[s][b];
                    }
                }
            }
        }
    }
}

void cov_update_v5(int N, int M, double X[N][M], double S[M][M]) {
    #pragma omp parallel for num_threads(16) schedule(static)
    for (long long cidx = 0; cidx < (M - 0 + 10 - 1) / 10 * ((M - 0 + 267 - 1) / 267); cidx += 1) {
        for (long long s_t = 0; s_t < N; s_t += 56) {
            for (long long a = 0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 10 - 1) / 10) * 10; a < REPRO_MIN(0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 10 - 1) / 10) * 10 + 10, M); a += 1) {
                for (long long b = 0 + cidx % ((M - 0 + 267 - 1) / 267) * 267; b < REPRO_MIN(0 + cidx % ((M - 0 + 267 - 1) / 267) * 267 + 267, M); b += 1) {
                    for (long long s = s_t; s < REPRO_MIN(s_t + 56, N); s += 1) {
                        S[a][b] = S[a][b] + X[s][a] * X[s][b];
                    }
                }
            }
        }
    }
}

void cov_update_v6(int N, int M, double X[N][M], double S[M][M]) {
    #pragma omp parallel for num_threads(10) schedule(static)
    for (long long cidx = 0; cidx < (M - 0 + 10 - 1) / 10 * ((M - 0 + 267 - 1) / 267); cidx += 1) {
        for (long long s_t = 0; s_t < N; s_t += 58) {
            for (long long a = 0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 10 - 1) / 10) * 10; a < REPRO_MIN(0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 10 - 1) / 10) * 10 + 10, M); a += 1) {
                for (long long b = 0 + cidx % ((M - 0 + 267 - 1) / 267) * 267; b < REPRO_MIN(0 + cidx % ((M - 0 + 267 - 1) / 267) * 267 + 267, M); b += 1) {
                    for (long long s = s_t; s < REPRO_MIN(s_t + 58, N); s += 1) {
                        S[a][b] = S[a][b] + X[s][a] * X[s][b];
                    }
                }
            }
        }
    }
}

void cov_update_v7(int N, int M, double X[N][M], double S[M][M]) {
    #pragma omp parallel for num_threads(8) schedule(static)
    for (long long cidx = 0; cidx < (M - 0 + 88 - 1) / 88 * ((M - 0 + 267 - 1) / 267); cidx += 1) {
        for (long long s_t = 0; s_t < N; s_t += 21) {
            for (long long a = 0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 88 - 1) / 88) * 88; a < REPRO_MIN(0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 88 - 1) / 88) * 88 + 88, M); a += 1) {
                for (long long b = 0 + cidx % ((M - 0 + 267 - 1) / 267) * 267; b < REPRO_MIN(0 + cidx % ((M - 0 + 267 - 1) / 267) * 267 + 267, M); b += 1) {
                    for (long long s = s_t; s < REPRO_MIN(s_t + 21, N); s += 1) {
                        S[a][b] = S[a][b] + X[s][a] * X[s][b];
                    }
                }
            }
        }
    }
}

void cov_update_v8(int N, int M, double X[N][M], double S[M][M]) {
    #pragma omp parallel for num_threads(7) schedule(static)
    for (long long cidx = 0; cidx < (M - 0 + 58 - 1) / 58 * ((M - 0 + 267 - 1) / 267); cidx += 1) {
        for (long long s_t = 0; s_t < N; s_t += 25) {
            for (long long a = 0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 58 - 1) / 58) * 58; a < REPRO_MIN(0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 58 - 1) / 58) * 58 + 58, M); a += 1) {
                for (long long b = 0 + cidx % ((M - 0 + 267 - 1) / 267) * 267; b < REPRO_MIN(0 + cidx % ((M - 0 + 267 - 1) / 267) * 267 + 267, M); b += 1) {
                    for (long long s = s_t; s < REPRO_MIN(s_t + 25, N); s += 1) {
                        S[a][b] = S[a][b] + X[s][a] * X[s][b];
                    }
                }
            }
        }
    }
}

void cov_update_v9(int N, int M, double X[N][M], double S[M][M]) {
    #pragma omp parallel for num_threads(4) schedule(static)
    for (long long cidx = 0; cidx < (M - 0 + 68 - 1) / 68 * ((M - 0 + 274 - 1) / 274); cidx += 1) {
        for (long long s_t = 0; s_t < N; s_t += 21) {
            for (long long a = 0 + cidx / ((M - 0 + 274 - 1) / 274) % ((M - 0 + 68 - 1) / 68) * 68; a < REPRO_MIN(0 + cidx / ((M - 0 + 274 - 1) / 274) % ((M - 0 + 68 - 1) / 68) * 68 + 68, M); a += 1) {
                for (long long b = 0 + cidx % ((M - 0 + 274 - 1) / 274) * 274; b < REPRO_MIN(0 + cidx % ((M - 0 + 274 - 1) / 274) * 274 + 274, M); b += 1) {
                    for (long long s = s_t; s < REPRO_MIN(s_t + 21, N); s += 1) {
                        S[a][b] = S[a][b] + X[s][a] * X[s][b];
                    }
                }
            }
        }
    }
}

void cov_update_v10(int N, int M, double X[N][M], double S[M][M]) {
    #pragma omp parallel for num_threads(3) schedule(static)
    for (long long cidx = 0; cidx < (M - 0 + 86 - 1) / 86 * ((M - 0 + 280 - 1) / 280); cidx += 1) {
        for (long long s_t = 0; s_t < N; s_t += 56) {
            for (long long a = 0 + cidx / ((M - 0 + 280 - 1) / 280) % ((M - 0 + 86 - 1) / 86) * 86; a < REPRO_MIN(0 + cidx / ((M - 0 + 280 - 1) / 280) % ((M - 0 + 86 - 1) / 86) * 86 + 86, M); a += 1) {
                for (long long b = 0 + cidx % ((M - 0 + 280 - 1) / 280) * 280; b < REPRO_MIN(0 + cidx % ((M - 0 + 280 - 1) / 280) * 280 + 280, M); b += 1) {
                    for (long long s = s_t; s < REPRO_MIN(s_t + 56, N); s += 1) {
                        S[a][b] = S[a][b] + X[s][a] * X[s][b];
                    }
                }
            }
        }
    }
}

void cov_update_v11(int N, int M, double X[N][M], double S[M][M]) {
    #pragma omp parallel for num_threads(2) schedule(static)
    for (long long cidx = 0; cidx < (M - 0 + 69 - 1) / 69 * ((M - 0 + 267 - 1) / 267); cidx += 1) {
        for (long long s_t = 0; s_t < N; s_t += 21) {
            for (long long a = 0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 69 - 1) / 69) * 69; a < REPRO_MIN(0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 69 - 1) / 69) * 69 + 69, M); a += 1) {
                for (long long b = 0 + cidx % ((M - 0 + 267 - 1) / 267) * 267; b < REPRO_MIN(0 + cidx % ((M - 0 + 267 - 1) / 267) * 267 + 267, M); b += 1) {
                    for (long long s = s_t; s < REPRO_MIN(s_t + 21, N); s += 1) {
                        S[a][b] = S[a][b] + X[s][a] * X[s][b];
                    }
                }
            }
        }
    }
}

void cov_update_v12(int N, int M, double X[N][M], double S[M][M]) {
    #pragma omp parallel for num_threads(1) schedule(static)
    for (long long cidx = 0; cidx < (M - 0 + 51 - 1) / 51 * ((M - 0 + 267 - 1) / 267); cidx += 1) {
        for (long long s_t = 0; s_t < N; s_t += 21) {
            for (long long a = 0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 51 - 1) / 51) * 51; a < REPRO_MIN(0 + cidx / ((M - 0 + 267 - 1) / 267) % ((M - 0 + 51 - 1) / 51) * 51 + 51, M); a += 1) {
                for (long long b = 0 + cidx % ((M - 0 + 267 - 1) / 267) * 267; b < REPRO_MIN(0 + cidx % ((M - 0 + 267 - 1) / 267) * 267 + 267, M); b += 1) {
                    for (long long s = s_t; s < REPRO_MIN(s_t + 21, N); s += 1) {
                        S[a][b] = S[a][b] + X[s][a] * X[s][b];
                    }
                }
            }
        }
    }
}


typedef void (*cov_update_fn_t)(int N, int M, double X[N][M], double S[M][M]);

typedef struct {
    cov_update_fn_t fn;
    double time;        /* measured region wall time [s] */
    double resources;   /* threads x time [cpu-s] */
    int threads;        /* tuned thread count */
    const char *params; /* parameter assignment */
} cov_update_version_t;

static const cov_update_version_t cov_update_versions[] = {
    { cov_update_v0, 0.049114262709952325, 1.4734278812985697, 30, "threads=30 tile_a=88 tile_b=267 tile_s=21" },
    { cov_update_v1, 0.052513218012025166, 1.4703701043367046, 28, "threads=28 tile_a=98 tile_b=267 tile_s=40" },
    { cov_update_v2, 0.053082739196349156, 1.2739857407123798, 24, "threads=24 tile_a=54 tile_b=267 tile_s=28" },
    { cov_update_v3, 0.06112043697135185, 1.222408739427037, 20, "threads=20 tile_a=10 tile_b=306 tile_s=54" },
    { cov_update_v4, 0.06344330142128712, 1.1419794255831683, 18, "threads=18 tile_a=69 tile_b=267 tile_s=21" },
    { cov_update_v5, 0.0671002032191039, 1.0736032515056624, 16, "threads=16 tile_a=10 tile_b=267 tile_s=56" },
    { cov_update_v6, 0.09696956834723175, 0.9696956834723175, 10, "threads=10 tile_a=10 tile_b=267 tile_s=58" },
    { cov_update_v7, 0.11526760227781352, 0.9221408182225082, 8, "threads=8 tile_a=88 tile_b=267 tile_s=21" },
    { cov_update_v8, 0.12093289024002814, 0.8465302316801969, 7, "threads=7 tile_a=58 tile_b=267 tile_s=25" },
    { cov_update_v9, 0.1930044156608059, 0.7720176626432236, 4, "threads=4 tile_a=68 tile_b=274 tile_s=21" },
    { cov_update_v10, 0.25316673746315377, 0.7595002123894613, 3, "threads=3 tile_a=86 tile_b=280 tile_s=56" },
    { cov_update_v11, 0.359764962543235, 0.71952992508647, 2, "threads=2 tile_a=69 tile_b=267 tile_s=21" },
    { cov_update_v12, 0.695172511601603, 0.695172511601603, 1, "threads=1 tile_a=51 tile_b=267 tile_s=21" },
};

enum { cov_update_num_versions = sizeof(cov_update_versions) / sizeof(cov_update_versions[0]) };

/* Default runtime policy (paper section IV): pick the version minimizing
 * the user-weighted objective sum  w_time * t(v) + w_res * r(v). */
static int cov_update_select_version(double w_time, double w_res)
{
    int best = 0;
    double best_score = w_time * cov_update_versions[0].time
                      + w_res * cov_update_versions[0].resources;
    for (int i = 1; i < cov_update_num_versions; ++i) {
        double score = w_time * cov_update_versions[i].time
                     + w_res * cov_update_versions[i].resources;
        if (score < best_score) {
            best_score = score;
            best = i;
        }
    }
    return best;
}

/* Dispatch wrapper: delegates the region invocation to the runtime-selected
 * version (label 6 in the paper's Fig. 3). */
void cov_update_dispatch(double w_time, double w_res, int N, int M, double X[N][M], double S[M][M])
{
    int v = cov_update_select_version(w_time, w_res);
    cov_update_versions[v].fn(N, M, X, S);
}
