#!/usr/bin/env python
"""Quickstart: tune matrix multiplication for time AND efficiency at once.

This walks the paper's whole pipeline on one kernel:

1. the compiler analyzes the mm loop nest (Fig. 7 of the paper) and builds
   a transformation skeleton (tiling + collapse + parallelization with
   unbound tile sizes and thread count),
2. the RS-GDE3 static optimizer computes a Pareto set of configurations on
   the simulated 40-core Westmere machine,
3. the backend turns every Pareto point into a code version with trade-off
   metadata (printed below, and also emitted as multi-versioned C),
4. the runtime selects versions under different policies and actually
   executes one on real data.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.driver import TuningDriver
from repro.frontend import get_kernel
from repro.machine import WESTMERE
from repro.runtime import (
    FastestPolicy,
    MostEfficientPolicy,
    RegionExecutor,
    TimeCapPolicy,
    WeightedSumPolicy,
)


def main() -> None:
    # -- 1+2: analyze and tune ------------------------------------------
    driver = TuningDriver(machine=WESTMERE, seed=42)
    tuned = driver.tune_kernel("mm")

    print(tuned.summary())
    print(
        f"\nThe optimizer evaluated {tuned.result.evaluations} configurations "
        f"({tuned.result.generations} GDE3 generations) out of "
        f"{driver.make_problem(tuned.function, tuned.sizes)[0].space.cardinality():.3g} "
        "possible ones."
    )

    # -- 3: multi-versioned outputs --------------------------------------
    table = tuned.build_version_table()
    unit = tuned.emit_c()
    print(f"\nGenerated {len(table)} executable versions; the multi-versioned")
    print(f"C translation unit is {len(unit.source.splitlines())} lines (mm_dispatch & co).")

    # -- 4: runtime selection --------------------------------------------
    executor = RegionExecutor(table)
    print("\nRuntime policy decisions:")
    for policy in (
        FastestPolicy(),
        MostEfficientPolicy(),
        WeightedSumPolicy(0.5, 0.5),
        TimeCapPolicy(cap=2 * table.fastest().meta.time),
    ):
        executor.set_policy(policy)
        chosen = executor.select()
        print(f"  {policy.describe():<28} -> {chosen.meta.describe()}")

    # actually run the balanced pick on small real data
    executor.set_policy(WeightedSumPolicy(0.5, 0.5))
    kernel = get_kernel("mm")
    rng = np.random.default_rng(0)
    inputs = kernel.make_inputs(kernel.test_size, rng)
    arrays = {name: arr.copy() for name, arr in inputs.items()}
    version = executor.execute(arrays, kernel.test_size)
    reference = kernel.reference(inputs, kernel.test_size)
    ok = np.allclose(arrays["C"], reference["C"])
    print(
        f"\nExecuted version v{version.meta.index} on a "
        f"{kernel.test_size['N']}x{kernel.test_size['N']} problem: "
        f"result {'matches' if ok else 'DIFFERS FROM'} the NumPy reference."
    )


if __name__ == "__main__":
    main()
