#!/usr/bin/env python
"""Dynamic version selection under changing circumstances.

The abstract's promise: multi-versioned executables let the runtime "choose
specifically tuned code versions when dynamically adjusting to changing
circumstances".  This example simulates a day in the life of a shared
40-core node:

* phase 1 — the node is empty: a deadline policy picks a fast, wide version;
* phase 2 — a co-scheduled job takes 30 cores: the thread-cap policy reads
  the monitor's core count and drops to a narrower version *without
  retuning anything*;
* phase 3 — the operator switches the node to throughput mode: the
  efficiency policy picks the cheapest version per invocation.

At the end we compare total cpu-seconds against the naive "always fastest"
strategy — the quantity the second objective exists to save.

Run:  python examples/adaptive_runtime.py
"""

from __future__ import annotations

from repro.driver import TuningDriver
from repro.machine import WESTMERE
from repro.runtime import (
    FastestPolicy,
    MostEfficientPolicy,
    RegionExecutor,
    ThreadCapPolicy,
    TimeCapPolicy,
)


def simulate(executor: RegionExecutor, invocations: int) -> tuple[float, float]:
    """Pretend-run the region *invocations* times using the metadata times
    (we account rather than execute: the versions were tuned at N=1400 and
    the predicted times are exactly what the scheduler reasons about)."""
    wall = cpu = 0.0
    for _ in range(invocations):
        v = executor.select()
        wall += v.meta.time
        cpu += v.meta.resources
        executor.monitor.record(
            executor.table.region_name, v.meta.index, v.meta.threads, v.meta.time, v.meta.time
        )
    return wall, cpu


def main() -> None:
    driver = TuningDriver(machine=WESTMERE, seed=11)
    tuned = driver.tune_kernel("mm")
    table = tuned.build_version_table(executable=False)
    print(f"Pareto set: {len(table)} versions\n{table.pareto_summary()}\n")

    executor = RegionExecutor(table)
    total_wall = total_cpu = 0.0

    # phase 1: empty node, 0.1 s deadline per region invocation
    executor.monitor.set_available_cores(40)
    executor.set_policy(TimeCapPolicy(cap=0.1))
    v = executor.select()
    print(f"phase 1 (idle node, 100ms deadline)  -> v{v.meta.index} ({v.meta.threads} threads)")
    w, c = simulate(executor, 50)
    total_wall += w
    total_cpu += c

    # phase 2: co-scheduled job grabs 30 cores
    executor.monitor.set_available_cores(10)
    executor.set_policy(ThreadCapPolicy())
    v = executor.select()
    print(f"phase 2 (10 cores left)              -> v{v.meta.index} ({v.meta.threads} threads)")
    w, c = simulate(executor, 50)
    total_wall += w
    total_cpu += c

    # phase 3: throughput mode
    executor.set_policy(MostEfficientPolicy())
    v = executor.select()
    print(f"phase 3 (throughput mode)            -> v{v.meta.index} ({v.meta.threads} threads)")
    w, c = simulate(executor, 50)
    total_wall += w
    total_cpu += c

    # reference: always-fastest, oblivious to context
    naive = RegionExecutor(table, policy=FastestPolicy())
    nw, nc = simulate(naive, 150)

    print("\n                     adaptive     always-fastest")
    print(f"wall time   [s]    {total_wall:9.2f}       {nw:9.2f}")
    print(f"cpu seconds [s]    {total_cpu:9.2f}       {nc:9.2f}")
    saved = 100 * (1 - total_cpu / nc)
    print(f"\nThe adaptive runtime spent {saved:.0f}% fewer cpu-seconds while meeting")
    print("each phase's constraints — the pay-off of shipping the whole Pareto")
    print("set instead of a single tuned version.")
    print(f"\nversion selections over time: {executor.monitor.selections()[:10]} ...")


if __name__ == "__main__":
    main()
