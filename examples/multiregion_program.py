#!/usr/bin/env python
"""Tuning all regions of a program with shared executions (paper §III-A).

2mm computes two chained matrix products — two tunable regions in one
program.  Tuning them separately would pay for two full measurement
campaigns; the paper's design measures "all simultaneously tuned regions"
in one program execution.  This example runs the lock-step multi-region
tuner on 2mm and on jacobi-2d (whose time loop wraps two spatial nests)
and reports the measurement sharing, then builds one version table per
region.

Run:  python examples/multiregion_program.py
"""

from __future__ import annotations

from repro.driver.multiregion import MultiRegionTuner
from repro.frontend import get_kernel
from repro.machine import WESTMERE
from repro.util.tables import Table


def tune_program(kernel_name: str, sizes: dict[str, int]) -> None:
    kernel = get_kernel(kernel_name)
    tuner = MultiRegionTuner(
        function=kernel.function, sizes=sizes, machine=WESTMERE, seed=3
    )
    result = tuner.run(seed=1)

    t = Table(
        ["region", "|S|", "region evaluations", "best time [s]"],
        title=f"{kernel_name}: {len(result.results)} regions tuned in lock-step",
    )
    for idx, r in enumerate(result.results):
        best = min(c.objectives[0] for c in r.front)
        t.add_row([idx, r.size, r.evaluations, round(best, 4)])
    print(t.render())
    print(
        f"program executions: {result.program_runs}  |  separate tuning "
        f"would need ~{result.total_region_evaluations}  |  sharing "
        f"x{result.sharing_factor:.2f}\n"
    )


def main() -> None:
    tune_program("2mm", {"N": 900})
    tune_program("jacobi2d", get_kernel("jacobi2d").default_size)

    print(
        "Each region's Pareto set becomes its own version table; the\n"
        "runtime can mix policies per region (e.g. the first product under\n"
        "a deadline, the second in throughput mode)."
    )


if __name__ == "__main__":
    main()
