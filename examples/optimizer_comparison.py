#!/usr/bin/env python
"""Comparing search strategies across all five kernels (mini Table VI).

Runs RS-GDE3, NSGA-II, random search and a brute-force grid on every
kernel of the paper's evaluation (on the simulated Barcelona machine) and
reports the paper's three metrics: evaluations E, Pareto-set size |S| and
normalized hypervolume V(S).

This is a smaller, single-repetition version of the full Table VI
reproduction in ``benchmarks/test_tab6_optimizer_comparison.py``.

Run:  python examples/optimizer_comparison.py
"""

from __future__ import annotations

import time

from repro.experiments import EXPERIMENT_KERNELS, make_setup, run_brute_force
from repro.machine import BARCELONA
from repro.optimizer import NSGA2, RSGDE3, compare_fronts, random_search
from repro.util.tables import Table


def main() -> None:
    table = Table(
        ["kernel", "strategy", "E", "|S|", "V(S)"],
        title=f"Strategy comparison on {BARCELONA.name} (1 run each)",
    )
    for kernel in EXPERIMENT_KERNELS:
        t0 = time.perf_counter()
        setup = make_setup(kernel, BARCELONA)

        bf = run_brute_force(setup).result
        rs = RSGDE3(setup.problem(seed=101)).run(seed=1)
        budget = max(rs.evaluations, 30)
        rnd = random_search(setup.problem(seed=102), budget=budget, seed=1)
        ga = NSGA2(setup.problem(seed=103)).run(seed=1)

        metrics = compare_fronts(
            {"brute force": [bf], "random": [rnd], "NSGA-II": [ga], "RS-GDE3": [rs]}
        )
        for m in metrics:
            table.add_row([kernel, m.name, int(m.evaluations), m.size, m.hypervolume])
        print(f"  [{kernel} done in {time.perf_counter() - t0:.1f}s]")

    print()
    print(table.render())
    print(
        "\nExpected shape (paper Table VI): RS-GDE3 reaches brute-force-level"
        "\nhypervolume with 90-99% fewer evaluations and produces the largest"
        "\nPareto sets; random search at the same budget trails clearly."
    )


if __name__ == "__main__":
    main()
