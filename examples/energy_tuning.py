#!/usr/bin/env python
"""Tri-objective tuning: time, cpu-seconds AND energy.

The paper names energy consumption as an example objective (§III-B1) but
evaluates two objectives.  The framework is objective-agnostic, so this
example turns energy on and explores the richer trade-off space:

* the *fastest* version uses every core,
* the *most cpu-efficient* version runs on one core — but burns the most
  energy of all, because the rest of the socket idles for a long time,
* the *greenest* version sits in between (typically one full socket).

Run:  python examples/energy_tuning.py
"""

from __future__ import annotations

from repro.driver import TuningDriver
from repro.machine import WESTMERE
from repro.runtime import EnergyCapPolicy, GreenestPolicy, RegionExecutor
from repro.util.tables import Table


def main() -> None:
    driver = TuningDriver(machine=WESTMERE, seed=9)
    tuned = driver.tune_kernel("mm", with_energy=True)

    metas = tuned.version_metas()
    t = Table(
        ["version", "threads", "time [s]", "cpu-s", "energy [J]"],
        title=(
            f"Tri-objective Pareto set: mm on {WESTMERE.name} "
            f"(|S|={len(metas)}, E={tuned.result.evaluations})"
        ),
    )
    for m in metas:
        t.add_row(
            [m.index, m.threads, round(m.time, 4), round(m.resources, 3), round(m.energy, 1)]
        )
    print(t.render())

    table = tuned.build_version_table(executable=False)
    executor = RegionExecutor(table, policy=GreenestPolicy())
    greenest = executor.select().meta
    fastest = table.fastest().meta
    cheapest = table.most_efficient().meta

    print(f"\nfastest   : {fastest.threads:3d} threads, {fastest.energy:6.1f} J, {fastest.time:.4f} s")
    print(f"fewest cpu-s: {cheapest.threads:2d} threads, {cheapest.energy:6.1f} J, {cheapest.time:.4f} s")
    print(f"greenest  : {greenest.threads:3d} threads, {greenest.energy:6.1f} J, {greenest.time:.4f} s")

    budget = greenest.energy * 1.1
    executor.set_policy(EnergyCapPolicy(cap=budget))
    capped = executor.select().meta
    print(
        f"\nunder a {budget:.1f} J per-invocation budget the runtime picks "
        f"v{capped.index} ({capped.threads} threads, {capped.energy:.1f} J, "
        f"{capped.time:.4f} s) — the fastest version that stays green enough."
    )
    print(
        "\nNote the three-way tension: minimizing cpu-seconds (1 thread) "
        "maximizes energy,\nbecause the active socket's idle power burns for "
        "the whole long run. Energy's own\noptimum is an intermediate thread "
        "count — a trade-off invisible to bi-objective tuning."
    )


if __name__ == "__main__":
    main()
