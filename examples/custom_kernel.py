#!/usr/bin/env python
"""Tuning user-supplied C code and emitting a multi-versioned C file.

The paper's framework is compiler-based: "compiler-based solutions do not
depend on the programmer to establish the search space".  This example
feeds a C kernel the framework has never seen (a blocked covariance-style
update) through the same pipeline:

* the mini-C frontend parses it into the IR,
* the analyzer's dependence test finds the tilable band and the parallel
  loops on its own,
* RS-GDE3 tunes it for the simulated 32-core Barcelona machine,
* the multi-versioning backend writes ``custom_multiversioned.c`` next to
  this script — compile it with ``gcc -fopenmp -c`` if you like.

Run:  python examples/custom_kernel.py
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import extract_regions
from repro.driver import TuningDriver
from repro.frontend import parse_function
from repro.machine import BARCELONA

SOURCE = """
void cov_update(int N, int M, double X[N][M], double S[M][M]) {
    for (int a = 0; a < M; a++)
        for (int b = 0; b < M; b++)
            for (int s = 0; s < N; s++)
                S[a][b] += X[s][a] * X[s][b];
}
"""


def main() -> None:
    fn = parse_function(SOURCE)

    # what did the analyzer find?
    region = extract_regions(fn)[0]
    print(f"kernel        : {fn.name}")
    print(f"loop nest     : {region.domain.vars}")
    print(f"tilable band  : {region.tile_band}")
    print(f"parallelizable: {region.parallelizable}")
    print(f"dependences   : {[f'{d.array}{d.directions}' for d in region.dependences]}")

    driver = TuningDriver(machine=BARCELONA, seed=7)
    tuned = driver.tune_function(fn, sizes={"N": 2000, "M": 800})
    print()
    print(tuned.summary())

    unit = tuned.emit_c()
    out = Path(__file__).with_name("custom_multiversioned.c")
    out.write_text(unit.source)
    print(f"\nWrote {out.name}: {len(unit.versions)} versions + dispatch table.")
    print("Compile check: gcc -std=c99 -fopenmp -fsyntax-only", out.name)


if __name__ == "__main__":
    main()
